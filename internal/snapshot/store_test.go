package snapshot

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func stateAt(epoch uint64) *State {
	st := testState(42)
	st.Epoch = epoch
	return st
}

func mustSave(t *testing.T, s *Store, peer string, st *State) {
	t.Helper()
	if err := s.Save(peer, st); err != nil {
		t.Fatal(err)
	}
}

func TestStoreSaveLoad(t *testing.T) {
	s, err := NewStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := s.LoadLatest("isp000", 100); err != nil || st != nil {
		t.Fatalf("empty store: got (%v, %v), want (nil, nil)", st, err)
	}
	mustSave(t, s, "isp000", stateAt(20))
	mustSave(t, s, "isp000", stateAt(40))
	mustSave(t, s, "isp001", stateAt(30))

	st, err := s.LoadLatest("isp000", 100)
	if err != nil || st == nil || st.Epoch != 40 {
		t.Fatalf("got (%+v, %v), want epoch 40", st, err)
	}
	if !reflect.DeepEqual(st, stateAt(40)) {
		t.Error("loaded state differs from saved state")
	}
	// maxEpoch bounds the pick: a snapshot ahead of the target epoch is
	// useless for seeking to it.
	if st, _ := s.LoadLatest("isp000", 25); st == nil || st.Epoch != 20 {
		t.Errorf("maxEpoch=25 picked %+v, want epoch 20", st)
	}
	if st, _ := s.LoadLatest("isp000", 19); st != nil {
		t.Errorf("maxEpoch=19 picked %+v, want nil", st)
	}
	// Peers are isolated.
	if st, _ := s.LoadLatest("isp001", 100); st == nil || st.Epoch != 30 {
		t.Errorf("isp001 got %+v, want epoch 30", st)
	}
	// The peer adapter sees the same snapshots.
	if st, err := s.Peer("isp000").LoadLatest(100); err != nil || st == nil || st.Epoch != 40 {
		t.Errorf("Peer adapter got (%+v, %v), want epoch 40", st, err)
	}
}

func TestStoreRetention(t *testing.T) {
	s, err := NewStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []uint64{10, 20, 30, 40} {
		mustSave(t, s, "isp000", stateAt(e))
	}
	epochs, err := s.epochs("isp000")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(epochs, []uint64{40, 30}) {
		t.Errorf("retained epochs %v, want [40 30]", epochs)
	}
	// No temp files left behind.
	entries, _ := os.ReadDir(s.Dir())
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("stray temp file %s survived save", e.Name())
		}
	}
}

// TestStoreCorruptionFallback is the fallback ladder end to end: a
// corrupted newest snapshot silently falls back to the next older one,
// and when every snapshot is corrupt LoadLatest reports none — never an
// error that would wedge recovery, and never a silent load of bad data.
func TestStoreCorruptionFallback(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []uint64{10, 20, 30} {
		mustSave(t, s, "isp000", stateAt(e))
	}
	corrupt := func(epoch uint64) {
		path := filepath.Join(dir, fileName("isp000", epoch))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xFF
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	corrupt(30)
	if st, err := s.LoadLatest("isp000", 100); err != nil || st == nil || st.Epoch != 20 {
		t.Fatalf("after corrupting epoch 30: got (%+v, %v), want fallback to epoch 20", st, err)
	}
	// A truncated file (torn write under a valid name, which the atomic
	// protocol prevents but the reader still tolerates) is skipped too.
	path := filepath.Join(dir, fileName("isp000", 20))
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if st, err := s.LoadLatest("isp000", 100); err != nil || st == nil || st.Epoch != 10 {
		t.Fatalf("after truncating epoch 20: got (%+v, %v), want fallback to epoch 10", st, err)
	}
	corrupt(10)
	if st, err := s.LoadLatest("isp000", 100); err != nil || st != nil {
		t.Fatalf("all corrupt: got (%+v, %v), want (nil, nil) → epoch-0 replay", st, err)
	}
}

// TestStoreMislabeledSnapshot: a snapshot whose payload epoch disagrees
// with its file name is internally inconsistent and must be skipped.
func TestStoreMislabeledSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	mustSave(t, s, "isp000", stateAt(10))
	data, err := Encode(stateAt(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, fileName("isp000", 50)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if st, err := s.LoadLatest("isp000", 100); err != nil || st == nil || st.Epoch != 10 {
		t.Fatalf("got (%+v, %v), want the honest epoch-10 snapshot", st, err)
	}
}

func TestStoreRejectsBadPeerNames(t *testing.T) {
	s, err := NewStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, peer := range []string{"", "a/b", "..", "a\x00b"} {
		if err := s.Save(peer, stateAt(1)); err == nil {
			t.Errorf("Save accepted peer name %q", peer)
		}
		if _, err := s.LoadLatest(peer, 10); err == nil {
			t.Errorf("LoadLatest accepted peer name %q", peer)
		}
	}
}

package snapshot

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// DefaultKeep is how many snapshots per peer a Store retains when the
// caller does not say: the newest plus two fallbacks, so a torn or
// corrupted write never strands a peer on epoch-0 replay.
const DefaultKeep = 3

// Store persists per-peer snapshots in one directory — an agent's
// -state-dir. Writes are atomic (unique temp file, fsync, rename), so a
// crash — SIGKILL included — leaves either the previous snapshot set or
// the new one, never a half-written file under a valid name. Retention
// keeps the newest Keep snapshots per peer; older ones are pruned after
// each save.
//
// Reads are defensive: LoadLatest walks the peer's snapshots newest
// first and returns the first one that decodes cleanly, skipping
// corrupt or unreadable files — the fallback ladder. When nothing is
// usable it returns nil, and the caller replays from epoch 0.
//
// A Store is safe for concurrent use by multiple goroutines (the agent
// writes snapshots off the hot path); concurrent saves for the same
// peer and epoch are idempotent last-writer-wins renames.
type Store struct {
	dir  string
	keep int
}

// NewStore opens (creating if needed) a snapshot directory retaining
// keep snapshots per peer (DefaultKeep when keep <= 0).
func NewStore(dir string, keep int) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("snapshot: store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	if keep <= 0 {
		keep = DefaultKeep
	}
	return &Store{dir: dir, keep: keep}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// fileName is the canonical snapshot file name for (peer, epoch). The
// fixed-width epoch makes lexical order equal epoch order.
func fileName(peer string, epoch uint64) string {
	return fmt.Sprintf("%s-%012d.snap", peer, epoch)
}

// checkPeer rejects peer names that would escape the store directory or
// break file-name parsing.
func checkPeer(peer string) error {
	if peer == "" || peer == "." || peer == ".." ||
		strings.ContainsAny(peer, "/\\\x00") || peer != filepath.Base(peer) {
		return fmt.Errorf("snapshot: peer name %q is not a valid file-name component", peer)
	}
	return nil
}

// Save atomically persists one peer snapshot and prunes that peer's
// files beyond the retention bound. The write protocol — encode, unique
// temp file, fsync, rename onto the canonical name — guarantees a
// reader (or a post-crash restart) only ever sees complete snapshots.
func (s *Store) Save(peer string, st *State) error {
	if err := checkPeer(peer); err != nil {
		return err
	}
	data, err := Encode(st)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, fileName(peer, st.Epoch)+".tmp*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, fileName(peer, st.Epoch))); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	s.prune(peer)
	return nil
}

// epochs lists the peer's snapshot epochs, newest first.
func (s *Store) epochs(peer string) ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	prefix := peer + "-"
	var out []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".snap") {
			continue
		}
		digits := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".snap")
		epoch, err := strconv.ParseUint(digits, 10, 64)
		if err != nil || fileName(peer, epoch) != name {
			continue // stray temp file or foreign name; not ours to touch
		}
		out = append(out, epoch)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out, nil
}

// prune removes the peer's snapshots beyond the retention bound.
// Best-effort: a racing remove or a permission error costs disk, not
// correctness.
func (s *Store) prune(peer string) {
	epochs, err := s.epochs(peer)
	if err != nil {
		return
	}
	for _, epoch := range epochs[min(s.keep, len(epochs)):] {
		os.Remove(filepath.Join(s.dir, fileName(peer, epoch)))
	}
}

// LoadLatest returns the peer's newest usable snapshot at or below
// maxEpoch, walking the fallback ladder: files that are missing,
// truncated, corrupted, from an unimplemented version, or internally
// inconsistent (a payload epoch disagreeing with the file name) are
// skipped in favor of the next-older snapshot. (nil, nil) means no
// usable snapshot exists and the caller replays from epoch 0 — a
// corrupt store degrades recovery cost, never correctness.
func (s *Store) LoadLatest(peer string, maxEpoch int) (*State, error) {
	if err := checkPeer(peer); err != nil {
		return nil, err
	}
	epochs, err := s.epochs(peer)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	if maxEpoch < 0 {
		maxEpoch = 0
	}
	for _, epoch := range epochs {
		if epoch > uint64(maxEpoch) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, fileName(peer, epoch)))
		if err != nil {
			continue // racing prune or unreadable file: next rung
		}
		st, err := Decode(data)
		if err != nil || st.Epoch != epoch {
			continue // corrupt, foreign-version, or mislabeled: next rung
		}
		return st, nil
	}
	return nil, nil
}

// Peer binds the store to one peer, satisfying the snapshot-source
// shape consumers like continuous.Controller.RestoreLatest expect.
func (s *Store) Peer(name string) *PeerStore {
	return &PeerStore{s: s, peer: name}
}

// PeerStore is a single peer's view of a Store.
type PeerStore struct {
	s    *Store
	peer string
}

// LoadLatest returns the peer's newest usable snapshot at or below
// maxEpoch (nil when none).
func (p *PeerStore) LoadLatest(maxEpoch int) (*State, error) {
	return p.s.LoadLatest(p.peer, maxEpoch)
}

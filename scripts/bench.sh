#!/usr/bin/env bash
# Regenerate the perf trajectory in BENCH_runner.json: run the tracked
# benchmarks exactly as the file's comment describes and append one
# PR-tagged entry to its history. Usage:
#
#     scripts/bench.sh <pr-number>     # or: make bench PR=<pr-number>
#
# Requires jq. Run from the repository root (the Makefile target does).
#
# Telemetry budget (DESIGN.md §10): wire/session instrumentation must
# stay within benchmark noise. WireSession allocs/op is the wire
# layer's own budget — per-frame stats add zero allocations
# (TestWireStatsObserveDoesNotAllocate pins the observe calls; 1108
# allocs/op at PRs 6 and 7). MeshSessions allocs/op carries a flat
# per-agent registry-setup overhead on top; any *per-session* growth
# shows up as an allocs/op delta that scales with epochs and should be
# treated as a regression, not noise.
set -euo pipefail

pr="${1:?usage: scripts/bench.sh <pr-number>}"
bench_json="BENCH_runner.json"
[ -f "$bench_json" ] || { echo "bench.sh: $bench_json not found (run from the repo root)" >&2; exit 1; }

out=$(go test -run '^$' -bench 'BenchmarkGenerate|BenchmarkEvaluatorPrefs|BenchmarkRunnerWorkers|BenchmarkRunnerStream|BenchmarkMeshSessions|BenchmarkWireSession|BenchmarkSeekEpochFromSnapshot' -benchtime 3x .)
printf '%s\n' "$out"

# Benchmark lines look like:
#   BenchmarkRunnerWorkers/workers=1-2  3  320000000 ns/op  21.70 pairs/s
#   BenchmarkMeshSessions/workers=1-2   3  130000000 ns/op  526.2 sessions/s  48000 B/op  1096 allocs/op
# Emit "name sub unit value" rows for the custom metrics plus the
# allocation counter (benchmarks without a sub-benchmark get sub
# "single").
rows=$(printf '%s\n' "$out" | awk '
	/^Benchmark/ {
		split($1, parts, "/")
		name = parts[1]; sub(/-[0-9]+$/, "", name)
		key = parts[2] == "" ? "single" : parts[2]; sub(/-[0-9]+$/, "", key)
		for (i = 2; i < NF; i++)
			if ($(i + 1) == "pairs/s" || $(i + 1) == "sessions/s" || $(i + 1) == "seeks/s" || $(i + 1) == "isps/s" || $(i + 1) == "prefs/s" || $(i + 1) == "allocs/op")
				print name, key, $(i + 1), $i
	}')
[ -n "$rows" ] || { echo "bench.sh: no benchmark metrics parsed" >&2; exit 1; }

# Throughput metrics land as {unit, <sub>: value}; allocs/op rows nest
# under an "allocs/op" object so each benchmark records both.
entry=$(printf '%s\n' "$rows" | jq -Rn --argjson pr "$pr" '
	reduce (inputs | split(" ") | select(length == 4)) as $r ({pr: $pr};
		if $r[2] == "allocs/op"
		then .[$r[0]]["allocs/op"] += {($r[1]): ($r[3] | tonumber)}
		else .[$r[0]] += {unit: $r[2], ($r[1]): ($r[3] | tonumber)}
		end)')

tmp=$(mktemp)
jq --argjson entry "$entry" '.history += [$entry]' "$bench_json" > "$tmp"
mv "$tmp" "$bench_json"
echo "bench.sh: appended PR $pr entry to $bench_json"
